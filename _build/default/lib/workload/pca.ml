let page = 256
let cov_base = 0
let cov_words = 32
let priv_base i = page * (16 + (4 * i))

let make ?(scale = 1.0) () =
  Api.make ~name:"pca" ~description:"mean phase, barrier, covariance phase"
    ~heap_pages:512 ~page_size:page (fun ~nthreads ops ->
      ops.Api.barrier_init 0 nthreads;
      Wl_util.spawn_workers ops ~n:nthreads (fun i w ->
          (* Phase 1: row means over a private slice. *)
          for c = 1 to Wl_util.scaled scale 6 do
            w.Api.work (Wl_util.work_amount scale 5_000);
            Wl_util.fill_region w ~addr:(priv_base i) ~bytes:512 ~tag:(i + c)
          done;
          w.Api.barrier_wait 0;
          (* Phase 2: covariance folds into shared cells. *)
          for c = 1 to Wl_util.scaled scale 6 do
            w.Api.work (Wl_util.work_amount scale 4_000);
            w.Api.lock (c mod 2);
            let a = cov_base + (8 * (((i * 7) + c) mod cov_words)) in
            w.Api.write_int ~addr:a (w.Api.read_int ~addr:a + c);
            w.Api.unlock (c mod 2)
          done;
          w.Api.barrier_wait 0);
      let sum = Wl_util.checksum ops ~addr:cov_base ~words:cov_words in
      ops.Api.log_output (Printf.sprintf "pca=%d" sum))

let default = make ()

let page = 256
let results = 0
let priv_base i = page * (8 + (2 * i))

let make ?(scale = 1.0) () =
  Api.make ~name:"linear_regression"
    ~description:"very short run; startup costs dominate" ~heap_pages:128 ~page_size:page
    (fun ~nthreads ops ->
      Wl_util.spawn_workers ops ~n:nthreads (fun i w ->
          (* One small scan, a couple of private writes, one locked fold. *)
          Wl_util.chunked_work w ~total:(Wl_util.work_amount scale 4_000)
            ~chunk:(Wl_util.work_amount scale 1_500);
          Wl_util.fill_region w ~addr:(priv_base i) ~bytes:64 ~tag:i;
          Wl_util.locked_add w ~lock:0 ~addr:results (i + 1));
      ops.Api.log_output
        (Printf.sprintf "lreg=%d" (ops.Api.read_int ~addr:results)))

let default = make ()

let page = 256
let cells_base = 0
let cell_words = 128
let priv_base i = page * (16 + (4 * i))
let ncell_locks = 32

let make ?(scale = 1.0) () =
  Api.make ~name:"barnes" ~description:"Barnes-Hut: tree build with cell locks, force phase, barriers"
    ~heap_pages:512 ~page_size:page (fun ~nthreads ops ->
      ops.Api.barrier_init 0 nthreads;
      let steps = Wl_util.scaled scale 6 in
      Wl_util.spawn_workers ops ~n:nthreads (fun i w ->
          for step = 1 to steps do
            (* Tree build: insert bodies under per-cell locks. *)
            for body = 1 to Wl_util.scaled scale 6 do
              w.Api.work (Wl_util.work_amount scale 1_500);
              let cell = ((i * 3) + (body * 5) + step) mod ncell_locks in
              w.Api.lock cell;
              let a = cells_base + (8 * ((cell * 4) + (body mod 4))) in
              w.Api.write_int ~addr:a (w.Api.read_int ~addr:a + 1);
              w.Api.unlock cell
            done;
            w.Api.barrier_wait 0;
            (* Force computation: private, compute-heavy. *)
            w.Api.work (Wl_util.work_amount scale 6_000);
            Wl_util.fill_region w ~addr:(priv_base i) ~bytes:384 ~tag:(i + step);
            w.Api.barrier_wait 0
          done);
      let sum = Wl_util.checksum ops ~addr:cells_base ~words:cell_words in
      ops.Api.log_output (Printf.sprintf "barnes=%d" sum))

let default = make ()

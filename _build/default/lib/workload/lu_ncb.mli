(** SPLASH-2 [lu_ncb] (non-contiguous blocks): like lu_cb but each
    thread's matrix elements interleave with every other thread's on the
    same pages.  Every barrier commit conflicts on nearly every touched
    page, maximizing byte merges and page propagation — a Fig 11/12
    scalability-problem benchmark and a Fig 16 case where even LRC
    cannot help much. *)

val make : ?scale:float -> unit -> Api.t
val default : Api.t

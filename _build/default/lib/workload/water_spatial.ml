let page = 256
let boundary_base = 0
let boundary_words = 32
let priv_base i = page * (16 + (3 * i))

let make ?(scale = 1.0) () =
  Api.make ~name:"water_spatial"
    ~description:"spatial decomposition: mostly private compute, few boundary locks, barriers"
    ~heap_pages:512 ~page_size:page (fun ~nthreads ops ->
      ops.Api.barrier_init 0 nthreads;
      let steps = Wl_util.scaled scale 6 in
      Wl_util.spawn_workers ops ~n:nthreads (fun i w ->
          for step = 1 to steps do
            (* Intra-box forces: private. *)
            w.Api.work (Wl_util.work_amount scale 5_500);
            Wl_util.fill_region w ~addr:(priv_base i) ~bytes:256 ~tag:(i + step);
            (* A few boundary-molecule updates. *)
            for b = 0 to 2 do
              w.Api.lock ((i + b) mod 4);
              let a = boundary_base + (8 * (((i * 5) + b + step) mod boundary_words)) in
              w.Api.write_int ~addr:a (w.Api.read_int ~addr:a + 1);
              w.Api.unlock ((i + b) mod 4)
            done;
            w.Api.barrier_wait 0
          done);
      let sum = Wl_util.checksum ops ~addr:boundary_base ~words:boundary_words in
      ops.Api.log_output (Printf.sprintf "water_sp=%d" sum))

let default = make ()

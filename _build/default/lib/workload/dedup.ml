let page = 256
let results_base = page * 4
let q1_base = page * 32
let q2_base = page * 36

(* Locks 0/1 protect the two queues; conds 0-3 are their nonfull/nonempty
   pairs. *)
let q1 = Wl_util.queue_make ~base:q1_base ~capacity:8 ~lock:0 ~nonfull:0 ~nonempty:1
let q2 = Wl_util.queue_make ~base:q2_base ~capacity:8 ~lock:1 ~nonfull:2 ~nonempty:3

let poison = 0 (* item ids are >= 1; 0 terminates a consumer *)

let make ?(scale = 1.0) () =
  Api.make ~name:"dedup" ~description:"3-stage pipeline over bounded queues"
    ~heap_pages:192 ~page_size:page (fun ~nthreads ops ->
      let items = Wl_util.scaled scale (12 * max 1 (nthreads / 3)) in
      (* Split threads across stages: fragment producers, chunk hashers,
         compressors.  At least one thread per stage. *)
      let n2 = max 1 (nthreads / 3) in
      let n3 = max 1 (nthreads / 3) in
      let n1 = max 1 (nthreads - n2 - n3) in
      let producers =
        List.init n1 (fun k ->
            ops.Api.spawn ~name:(Printf.sprintf "dedup-frag%d" k) (fun w ->
                let count = (items / n1) + if k < items mod n1 then 1 else 0 in
                for j = 1 to count do
                  w.Api.work (Wl_util.work_amount scale 1_800);
                  Wl_util.queue_push w q1 ((k * 10_000) + j)
                done))
      in
      let hashers =
        List.init n2 (fun k ->
            ops.Api.spawn ~name:(Printf.sprintf "dedup-hash%d" k) (fun w ->
                let continue = ref true in
                while !continue do
                  let item = Wl_util.queue_pop w q1 in
                  if item = poison then continue := false
                  else begin
                    w.Api.work (Wl_util.work_amount scale 4_500);
                    Wl_util.queue_push w q2 item
                  end
                done))
      in
      let compressors =
        List.init n3 (fun k ->
            ops.Api.spawn ~name:(Printf.sprintf "dedup-zip%d" k) (fun w ->
                let continue = ref true in
                while !continue do
                  let item = Wl_util.queue_pop w q2 in
                  if item = poison then continue := false
                  else begin
                    w.Api.work (Wl_util.work_amount scale 6_000);
                    (* Record the item's compressed size in its own slot:
                       commutative, so the checksum is schedule-independent. *)
                    let slot = ((item mod 10_000) + (item / 10_000)) mod 96 in
                    w.Api.lock 2;
                    w.Api.write_int ~addr:(results_base + (8 * slot))
                      (w.Api.read_int ~addr:(results_base + (8 * slot)) + item);
                    w.Api.unlock 2
                  end
                done))
      in
      List.iter ops.Api.join producers;
      (* Poison the hashers, then wait for them before poisoning stage 3. *)
      for _ = 1 to n2 do
        Wl_util.queue_push ops q1 poison
      done;
      List.iter ops.Api.join hashers;
      for _ = 1 to n3 do
        Wl_util.queue_push ops q2 poison
      done;
      List.iter ops.Api.join compressors;
      let sum = Wl_util.checksum ops ~addr:results_base ~words:96 in
      ops.Api.log_output (Printf.sprintf "dedup=%d" sum))

let default = make ()

let page = 256
let table_base = 0
let table_words = 48
let priv_base i = page * (12 + (3 * i))

let make ?(scale = 1.0) () =
  Api.make ~name:"word_count" ~description:"parallel scan, locked merge into shared table"
    ~heap_pages:384 ~page_size:page (fun ~nthreads ops ->
      Wl_util.spawn_workers ops ~n:nthreads (fun i w ->
          (* Scan phase: private counting. *)
          for c = 1 to Wl_util.scaled scale 8 do
            w.Api.work (Wl_util.work_amount scale 5_500);
            Wl_util.fill_region w ~addr:(priv_base i) ~bytes:384 ~tag:(i + c)
          done;
          (* Merge phase: batched updates to the shared table. *)
          for batch = 1 to Wl_util.scaled scale 6 do
            w.Api.work (Wl_util.work_amount scale 800);
            w.Api.lock (batch mod 4);
            for k = 0 to 2 do
              let a = table_base + (8 * (((i * 17) + (batch * 5) + k) mod table_words)) in
              w.Api.write_int ~addr:a (w.Api.read_int ~addr:a + 1)
            done;
            w.Api.unlock (batch mod 4)
          done);
      let sum = Wl_util.checksum ops ~addr:table_base ~words:table_words in
      ops.Api.log_output (Printf.sprintf "wcount=%d" sum))

let default = make ()

(** Deterministic synthetic programs generated from a seed.

    A synthetic program is a pure function of [(seed, threads, rounds)]:
    every worker executes a scripted mix of compute chunks, lock-protected
    updates, shared writes and barrier waits derived from a SplitMix
    stream.  They are the fuzzing substrate for the determinism property
    tests, and the [stress] CLI command runs sweeps of them.

    Two shapes are provided: {!make} (the general mix) and
    {!make_lock_heavy} (no barriers; dense short critical sections, the
    coarsening-sensitive pattern). *)

val make : seed:int -> ?rounds:int -> unit -> Api.t
(** Workers execute [rounds] random operations each (work / locked update
    / shared write / barrier) and then pad barrier arrivals so every
    worker passes the barrier the same number of times. *)

val make_lock_heavy : seed:int -> ?rounds:int -> ?locks:int -> unit -> Api.t

val op_mix : seed:int -> rounds:int -> (int * int * int * int)
(** For tests: how many (work, locked, write, barrier) ops one worker's
    script contains, for worker 0 of the given seed. *)

let page = 256
let grid_base = page * 16
let band_pages = 10 (* pages per thread band, including shared boundary pages *)

let make ?(scale = 1.0) () =
  Api.make ~name:"ocean_cp" ~description:"grid relaxation, many barriers, large propagation"
    ~heap_pages:1024 ~page_size:page (fun ~nthreads ops ->
      ops.Api.barrier_init 0 nthreads;
      let phases = Wl_util.scaled scale 16 in
      Wl_util.spawn_workers ops ~n:nthreads (fun i w ->
          for phase = 1 to phases do
            w.Api.work (Wl_util.work_amount scale 8_000);
            let band = grid_base + (page * (band_pages - 1) * i) in
            (* Interior pages: private to this thread's band. *)
            for pg = 0 to band_pages - 2 do
              Wl_util.fill_region w ~addr:(band + (page * pg)) ~bytes:page ~tag:(i + phase)
            done;
            (* Boundary row: the first page of the next band, shared with
               the neighbour; each writes its own half. *)
            if i < nthreads - 1 then begin
              let boundary = grid_base + (page * (band_pages - 1) * (i + 1)) in
              Wl_util.fill_region w ~addr:(boundary + (page / 2)) ~bytes:(page / 4) ~tag:(i + phase)
            end;
            w.Api.barrier_wait 0
          done;
          w.Api.write_int ~addr:(8 * i) (i * phases));
      let sum = Wl_util.checksum ops ~addr:0 ~words:nthreads in
      ops.Api.log_output (Printf.sprintf "ocean_cp=%d" sum))

let default = make ()

(** Phoenix [kmeans]: iterative clustering.

    Each iteration assigns points (parallel compute, private writes),
    folds partial centroid sums into shared state under a lock, and
    synchronizes at a barrier.  Mixed lock + barrier pressure; one of the
    Fig 11 scalability-problem benchmarks for DThreads/DWC. *)

val make : ?scale:float -> unit -> Api.t
val default : Api.t

let page = 256
let matrix_base = page * 16
let matrix_pages = 40

let make ?(scale = 1.0) () =
  Api.make ~name:"lu_ncb"
    ~description:"blocked LU, interleaved (conflicting) element layout, barrier-heavy"
    ~heap_pages:512 ~page_size:page (fun ~nthreads ops ->
      ops.Api.barrier_init 0 nthreads;
      let steps = Wl_util.scaled scale 8 in
      Wl_util.spawn_workers ops ~n:nthreads (fun i w ->
          for step = 1 to steps do
            w.Api.work (Wl_util.work_amount scale 9_000);
            (* Non-contiguous: thread i owns every nthreads-th 8-byte
               element, so all threads dirty all matrix pages. *)
            for pg = 0 to matrix_pages - 1 do
              let slots = page / 8 in
              let k = ref i in
              while !k < slots do
                w.Api.write_int
                  ~addr:(matrix_base + (pg * page) + (8 * !k))
                  ((i * 100) + step);
                k := !k + nthreads
              done
            done;
            w.Api.barrier_wait 0
          done;
          w.Api.write_int ~addr:(8 * i) (i + steps));
      let sum = Wl_util.checksum ops ~addr:0 ~words:nthreads in
      ops.Api.log_output (Printf.sprintf "lu_ncb=%d" sum))

let default = make ()

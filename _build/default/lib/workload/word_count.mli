(** Phoenix [word_count]: parallel scan plus a lock-protected merge of
    per-thread counts into the shared table. *)

val make : ?scale:float -> unit -> Api.t
val default : Api.t

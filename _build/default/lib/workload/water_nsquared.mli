(** SPLASH-2 [water_nsquared]: O(n^2) molecular dynamics.

    Each thread performs many fine-grained per-molecule lock
    acquisitions with very short critical sections between per-step
    barriers.  This is the paper's pathological case for coarsening at
    32 threads (section 5/6): the coarsened token hold blocks everyone
    else's high-rate lock traffic. *)

val make : ?scale:float -> unit -> Api.t
val default : Api.t

(** Phoenix [linear_regression]: the shortest benchmark in the suite.

    Tiny total runtime (the paper notes executions below 500 ms), so
    startup costs — process forks, first-touch faults — dominate and
    deterministic runtimes look comparatively bad.  DThreads/DWC
    outperform Consequence here in the paper (Fig 10). *)

val make : ?scale:float -> unit -> Api.t
val default : Api.t

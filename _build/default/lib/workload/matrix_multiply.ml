let page = 256
let priv_base i = page * (8 + (8 * i))

let make ?(scale = 1.0) () =
  Api.make ~name:"matrix_multiply" ~description:"dense compute over private output tiles"
    ~heap_pages:512 ~page_size:page (fun ~nthreads ops ->
      Wl_util.spawn_workers ops ~n:nthreads (fun i w ->
          for tile = 1 to Wl_util.scaled scale 10 do
            w.Api.work (Wl_util.work_amount scale 9_000);
            Wl_util.fill_region w
              ~addr:(priv_base i + (256 * ((tile - 1) mod 8)))
              ~bytes:256 ~tag:(i + tile)
          done;
          (* Per-thread result cell: disjoint, no lock needed. *)
          w.Api.write_int ~addr:(8 * i) (i * 1000));
      let sum = Wl_util.checksum ops ~addr:0 ~words:nthreads in
      ops.Api.log_output (Printf.sprintf "mm=%d" sum))

let default = make ()

let page = 256
let index_base = 0
let index_words = 64
let nlocks = 8

let make ?(scale = 1.0) () =
  Api.make ~name:"reverse_index"
    ~description:"high-rate short critical sections on shared index locks" ~heap_pages:256
    ~page_size:page (fun ~nthreads ops ->
      let links = Wl_util.scaled scale 60 in
      Wl_util.spawn_workers ops ~n:nthreads (fun i w ->
          for link = 1 to links do
            (* Parse a little HTML... *)
            w.Api.work (Wl_util.work_amount scale 500);
            (* ...then insert the link under the bucket lock. *)
            let bucket = ((i * 13) + (link * 7)) mod nlocks in
            w.Api.lock bucket;
            let a = index_base + (8 * (((i + link) * 11) mod index_words)) in
            w.Api.write_int ~addr:a (w.Api.read_int ~addr:a + 1);
            w.Api.unlock bucket
          done);
      let sum = Wl_util.checksum ops ~addr:index_base ~words:index_words in
      ops.Api.log_output (Printf.sprintf "rindex=%d" sum))

let default = make ()

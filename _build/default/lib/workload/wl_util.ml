let scaled s n = max 1 (int_of_float (Float.round (s *. float_of_int n)))

(* Calibration multiplier for local work (see mli). *)
let work_multiplier = 10

let work_amount s n = scaled s n * work_multiplier

let chunked_work (ops : Api.ops) ~total ~chunk =
  if chunk <= 0 then invalid_arg "chunked_work: chunk must be > 0";
  let rec go remaining =
    if remaining > 0 then begin
      ops.Api.work (min chunk remaining);
      go (remaining - chunk)
    end
  in
  go total

let fill_region (ops : Api.ops) ~addr ~bytes ~tag =
  if bytes > 0 then ops.Api.write ~addr (Bytes.make bytes (Char.chr (tag land 0xff)))

let touch_slots (ops : Api.ops) ~base ~slot_bytes ~slots ~tag =
  List.iter
    (fun slot -> fill_region ops ~addr:(base + (slot * slot_bytes)) ~bytes:slot_bytes ~tag)
    slots

let locked_add (ops : Api.ops) ~lock ~addr delta =
  ops.Api.lock lock;
  let v = ops.Api.read_int ~addr in
  ops.Api.write_int ~addr (v + delta);
  ops.Api.unlock lock

let spawn_workers (ops : Api.ops) ~n ?name body =
  let handles =
    List.init n (fun i ->
        match name with
        | Some f -> ops.Api.spawn ~name:(f i) (body i)
        | None -> ops.Api.spawn (body i))
  in
  List.iter ops.Api.join handles

let checksum (ops : Api.ops) ~addr ~words =
  let sum = ref 0 in
  for w = 0 to words - 1 do
    sum := !sum + ops.Api.read_int ~addr:(addr + (8 * w))
  done;
  !sum

type queue = {
  q_base : int;
  q_capacity : int;
  q_lock : Api.mutex;
  q_nonfull : Api.cond;
  q_nonempty : Api.cond;
}

let queue_make ~base ~capacity ~lock ~nonfull ~nonempty =
  if capacity <= 0 then invalid_arg "queue_make: capacity must be > 0";
  { q_base = base; q_capacity = capacity; q_lock = lock; q_nonfull = nonfull; q_nonempty = nonempty }

let q_head q = q.q_base
let q_tail q = q.q_base + 8
let q_slot q i = q.q_base + 16 + (8 * (i mod q.q_capacity))

let queue_push (ops : Api.ops) q v =
  if v < 0 then invalid_arg "queue_push: negative value";
  ops.Api.lock q.q_lock;
  while ops.Api.read_int ~addr:(q_tail q) - ops.Api.read_int ~addr:(q_head q) >= q.q_capacity do
    ops.Api.cond_wait q.q_nonfull q.q_lock
  done;
  let tail = ops.Api.read_int ~addr:(q_tail q) in
  ops.Api.write_int ~addr:(q_slot q tail) v;
  ops.Api.write_int ~addr:(q_tail q) (tail + 1);
  ops.Api.cond_signal q.q_nonempty;
  ops.Api.unlock q.q_lock

let queue_pop (ops : Api.ops) q =
  ops.Api.lock q.q_lock;
  while ops.Api.read_int ~addr:(q_tail q) = ops.Api.read_int ~addr:(q_head q) do
    ops.Api.cond_wait q.q_nonempty q.q_lock
  done;
  let head = ops.Api.read_int ~addr:(q_head q) in
  let v = ops.Api.read_int ~addr:(q_slot q head) in
  ops.Api.write_int ~addr:(q_head q) (head + 1);
  ops.Api.cond_signal q.q_nonfull;
  ops.Api.unlock q.q_lock;
  v

let page = 256
let priv_base i = page * (8 + (4 * i))

let make ?(scale = 1.0) () =
  Api.make ~name:"swaptions" ~description:"Monte-Carlo pricing over private state"
    ~heap_pages:384 ~page_size:page (fun ~nthreads ops ->
      Wl_util.spawn_workers ops ~n:nthreads (fun i w ->
          for trial = 1 to Wl_util.scaled scale 6 do
            w.Api.work (Wl_util.work_amount scale 8_500);
            Wl_util.fill_region w ~addr:(priv_base i) ~bytes:256 ~tag:(i + trial)
          done;
          w.Api.write_int ~addr:(8 * i) ((i * 31) + 11));
      let sum = Wl_util.checksum ops ~addr:0 ~words:nthreads in
      ops.Api.log_output (Printf.sprintf "swaptions=%d" sum))

let default = make ()

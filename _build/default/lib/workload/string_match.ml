let make ?(scale = 1.0) () =
  Api.make ~name:"string_match" ~description:"pure scanning compute, no synchronization"
    ~heap_pages:128 ~page_size:256 (fun ~nthreads ops ->
      Wl_util.spawn_workers ops ~n:nthreads (fun i w ->
          Wl_util.chunked_work w
            ~total:(Wl_util.work_amount scale 45_000)
            ~chunk:(Wl_util.work_amount scale 9_000);
          (* Record the (tiny) per-thread match count. *)
          w.Api.write_int ~addr:(8 * i) (i + 3));
      let sum = Wl_util.checksum ops ~addr:0 ~words:nthreads in
      ops.Api.log_output (Printf.sprintf "smatch=%d" sum))

let default = make ()

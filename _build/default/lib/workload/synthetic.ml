type op = Work of int | Locked of int | Write of int * int | Barrier

(* The per-worker script is a pure function of (seed, worker index). *)
let script ~seed ~worker ~rounds =
  let p = Sim.Prng.create ~seed:(seed + (1000 * worker)) in
  List.init rounds (fun _ ->
      match Sim.Prng.int p ~bound:4 with
      | 0 -> Work (Sim.Prng.int p ~bound:2_000 + 100)
      | 1 -> Locked (Sim.Prng.int p ~bound:3)
      | 2 -> Write (256 + (8 * Sim.Prng.int p ~bound:64), Sim.Prng.int p ~bound:1_000_000)
      | _ -> Barrier)

let run_script (w : Api.ops) ops =
  List.iter
    (fun op ->
      match op with
      | Work n -> w.Api.work n
      | Locked l ->
          w.Api.lock l;
          let a = 8 * (l + 1) in
          w.Api.write_int ~addr:a (w.Api.read_int ~addr:a + 1);
          w.Api.unlock l
      | Write (addr, v) -> w.Api.write_int ~addr v
      | Barrier -> w.Api.barrier_wait 0)
    ops

let make ~seed ?(rounds = 12) () =
  Api.make
    ~name:(Printf.sprintf "synthetic-%d" seed)
    ~description:"seeded random mix of work, locks, writes and barriers" ~heap_pages:32
    ~page_size:64
    (fun ~nthreads ops ->
      ops.Api.barrier_init 0 nthreads;
      let workers =
        List.init nthreads (fun i ->
            let body = script ~seed ~worker:i ~rounds in
            let barriers =
              List.length (List.filter (function Barrier -> true | _ -> false) body)
            in
            ops.Api.spawn (fun w ->
                run_script w body;
                (* Everyone must pass the barrier [rounds] times in total. *)
                for _ = barriers + 1 to rounds do
                  w.Api.barrier_wait 0
                done))
      in
      List.iter ops.Api.join workers;
      let sum = Wl_util.checksum ops ~addr:8 ~words:3 in
      ops.Api.log_output (Printf.sprintf "synthetic=%d" sum))

let make_lock_heavy ~seed ?(rounds = 40) ?(locks = 8) () =
  Api.make
    ~name:(Printf.sprintf "synthetic-locks-%d" seed)
    ~description:"seeded dense short critical sections (coarsening-sensitive)" ~heap_pages:32
    ~page_size:64
    (fun ~nthreads ops ->
      let workers =
        List.init nthreads (fun i ->
            let p = Sim.Prng.create ~seed:(seed + (7_777 * i)) in
            let pairs =
              List.init rounds (fun _ ->
                  (Sim.Prng.int p ~bound:locks, Sim.Prng.int p ~bound:4_000 + 500))
            in
            ops.Api.spawn (fun w ->
                List.iter
                  (fun (l, gap) ->
                    w.Api.work gap;
                    w.Api.lock l;
                    let a = 8 * (l + 1) in
                    w.Api.write_int ~addr:a (w.Api.read_int ~addr:a + 1);
                    w.Api.unlock l)
                  pairs))
      in
      List.iter ops.Api.join workers;
      let sum = Wl_util.checksum ops ~addr:8 ~words:locks in
      ops.Api.log_output (Printf.sprintf "locks=%d" sum))

let op_mix ~seed ~rounds =
  let body = script ~seed ~worker:0 ~rounds in
  let count f = List.length (List.filter f body) in
  ( count (function Work _ -> true | _ -> false),
    count (function Locked _ -> true | _ -> false),
    count (function Write _ -> true | _ -> false),
    count (function Barrier -> true | _ -> false) )

let page = 256
let mol_base = 0
let mol_words = 256
let nmol_locks = 64
let priv_base i = page * (16 + (2 * i))

let make ?(scale = 1.0) () =
  Api.make ~name:"water_nsquared"
    ~description:"fine-grained per-molecule locks, short critical sections, per-step barriers"
    ~heap_pages:512 ~page_size:page (fun ~nthreads ops ->
      ops.Api.barrier_init 0 nthreads;
      let steps = Wl_util.scaled scale 4 in
      let interactions = Wl_util.scaled scale 24 in
      Wl_util.spawn_workers ops ~n:nthreads (fun i w ->
          for step = 1 to steps do
            for inter = 1 to interactions do
              w.Api.work (Wl_util.work_amount scale 600);
              let mol = ((i * 11) + (inter * 7) + step) mod nmol_locks in
              w.Api.lock mol;
              let a = mol_base + (8 * ((mol * 4) + (inter mod 4))) in
              w.Api.write_int ~addr:a (w.Api.read_int ~addr:a + 1);
              w.Api.unlock mol
            done;
            Wl_util.fill_region w ~addr:(priv_base i) ~bytes:128 ~tag:(i + step);
            w.Api.barrier_wait 0
          done);
      let sum = Wl_util.checksum ops ~addr:mol_base ~words:mol_words in
      ops.Api.log_output (Printf.sprintf "water_ns=%d" sum))

let default = make ()

(** Phoenix [reverse_index]: link extraction into a shared index.

    Very frequent, very short critical sections on a handful of index
    locks.  The flagship adaptive-coarsening benchmark (Fig 14): without
    coarsening every tiny critical section pays a full global
    coordination phase. *)

val make : ?scale:float -> unit -> Api.t
val default : Api.t

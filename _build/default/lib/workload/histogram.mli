(** Phoenix [histogram]: embarrassingly parallel pixel binning.

    Workers scan private slices of the input, accumulating into private
    bins, and merge into the shared histogram once at the end under a
    single lock.  Almost no synchronization: every library should be
    within noise of pthreads (Fig 10's left cluster). *)

val make : ?scale:float -> unit -> Api.t
val default : Api.t

(** SPLASH-2 [barnes]: Barnes-Hut N-body.

    Tree build (per-cell locks) then force computation (parallel) per
    time step, with barriers between phases. *)

val make : ?scale:float -> unit -> Api.t
val default : Api.t

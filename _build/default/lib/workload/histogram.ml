let page = 256
let shared_bins = 0 (* 24 bins of 8 bytes at the heap base *)
let bins = 24
let priv_base i = page * (16 + (4 * i))

let make ?(scale = 1.0) () =
  Api.make ~name:"histogram" ~description:"parallel pixel binning, single merge lock"
    ~heap_pages:512 ~page_size:page (fun ~nthreads ops ->
      let scan_chunks = Wl_util.scaled scale 16 in
      Wl_util.spawn_workers ops ~n:nthreads (fun i w ->
          (* Scan: pure compute plus private bin updates. *)
          for c = 1 to scan_chunks do
            w.Api.work (Wl_util.work_amount scale 6_000);
            Wl_util.fill_region w ~addr:(priv_base i) ~bytes:(8 * bins) ~tag:(i + c)
          done;
          (* Merge private bins into the shared histogram. *)
          w.Api.lock 0;
          for b = 0 to bins - 1 do
            let v = w.Api.read_int ~addr:(shared_bins + (8 * b)) in
            w.Api.write_int ~addr:(shared_bins + (8 * b)) (v + i + b)
          done;
          w.Api.unlock 0);
      let sum = Wl_util.checksum ops ~addr:shared_bins ~words:bins in
      ops.Api.log_output (Printf.sprintf "histogram=%d" sum))

let default = make ()

(** PARSEC [canneal]: simulated annealing of a netlist.

    Barrier-heavy with a large volume of scattered writes to shared
    pages: the worst-case memory-propagation benchmark.  Threads swap
    elements all over the shared netlist, so nearly every page is dirty
    at every barrier, page-level conflicts force many byte merges, and
    the version-log allocation rate outruns Conversion's single-threaded
    GC (the paper's Fig 12 memory blow-up).  Each thread writes disjoint
    byte slots, so results remain well-defined. *)

val make : ?scale:float -> unit -> Api.t
val default : Api.t

(** PARSEC [dedup]: a 3-stage compression pipeline over bounded queues.

    Stage threads communicate through mutex+condvar queues with short
    critical sections at a high rate — like reverse_index, a program
    where DThreads/DWC's single global lock happens to work well and a
    naive fine-grained deterministic lock is pure overhead (paper
    section 5, Fig 10 discussion). *)

val make : ?scale:float -> unit -> Api.t
val default : Api.t

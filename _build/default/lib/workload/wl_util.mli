(** Shared building blocks for the benchmark models.

    Every model is a deterministic function of its parameters: "random"
    access patterns are drawn from explicitly seeded streams, so the same
    program text drives every runtime identically (only the runtime's
    scheduling differs). *)

val scaled : float -> int -> int
(** [scaled s n] is [max 1 (round (s * n))]: scales instruction counts and
    iteration counts by the benchmark scale factor. *)

val work_amount : float -> int -> int
(** [work_amount s n] scales a local-work instruction count: [scaled]
    times a global calibration multiplier that sets the suite's
    work-to-synchronization ratio (real benchmark inputs retire far more
    instructions per sync op than a millisecond-scale model can). *)

val chunked_work : Api.ops -> total:int -> chunk:int -> unit
(** Retire [total] instructions in pieces of [chunk] (models loop nests;
    gives the runtime natural overflow-publication points). *)

val fill_region : Api.ops -> addr:int -> bytes:int -> tag:int -> unit
(** Write a recognizable pattern over [bytes] bytes at [addr]. *)

val touch_slots : Api.ops -> base:int -> slot_bytes:int -> slots:int list -> tag:int -> unit
(** Write [slot_bytes]-byte slots at [base + slot*slot_bytes] for each
    listed slot index. *)

val locked_add : Api.ops -> lock:Api.mutex -> addr:int -> int -> unit
(** Lock-protected fetch-and-add on an 8-byte cell. *)

val spawn_workers :
  Api.ops -> n:int -> ?name:(int -> string) -> (int -> Api.ops -> unit) -> unit
(** Spawn [n] workers running [body i], then join them all in order. *)

val checksum : Api.ops -> addr:int -> words:int -> int
(** Sum of [words] consecutive 8-byte integers at [addr]; logged by the
    models as their output witness. *)

(** {1 Bounded queue in shared memory}

    A ring buffer protected by one mutex and two condition variables —
    the structure the pipeline benchmarks (ferret, dedup) are built on.
    Layout at [base]: head word, tail word, then [capacity] value slots.
    Values must be >= 0; {!queue_pop} returns a pushed value. *)

type queue = {
  q_base : int;
  q_capacity : int;
  q_lock : Api.mutex;
  q_nonfull : Api.cond;
  q_nonempty : Api.cond;
}

val queue_make :
  base:int -> capacity:int -> lock:Api.mutex -> nonfull:Api.cond -> nonempty:Api.cond -> queue

val queue_push : Api.ops -> queue -> int -> unit
val queue_pop : Api.ops -> queue -> int

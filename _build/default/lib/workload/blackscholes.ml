let page = 256
let priv_base i = page * (8 + (4 * i))

let make ?(scale = 1.0) () =
  Api.make ~name:"blackscholes" ~description:"data-parallel pricing, barrier per block"
    ~heap_pages:384 ~page_size:page (fun ~nthreads ops ->
      ops.Api.barrier_init 0 nthreads;
      Wl_util.spawn_workers ops ~n:nthreads (fun i w ->
          for block = 1 to Wl_util.scaled scale 5 do
            w.Api.work (Wl_util.work_amount scale 9_500);
            Wl_util.fill_region w ~addr:(priv_base i) ~bytes:512 ~tag:(i + block);
            w.Api.barrier_wait 0
          done;
          w.Api.write_int ~addr:(8 * i) (i * 7));
      let sum = Wl_util.checksum ops ~addr:0 ~words:nthreads in
      ops.Api.log_output (Printf.sprintf "bscholes=%d" sum))

let default = make ()

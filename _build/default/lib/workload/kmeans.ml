let page = 256
let centroids = 0 (* 16 centroid cells *)
let ncent = 16
let priv_base i = page * (16 + (4 * i))

let make ?(scale = 1.0) () =
  Api.make ~name:"kmeans" ~description:"iterative clustering: assign, reduce, barrier"
    ~heap_pages:512 ~page_size:page (fun ~nthreads ops ->
      ops.Api.barrier_init 0 nthreads;
      let iters = Wl_util.scaled scale 10 in
      Wl_util.spawn_workers ops ~n:nthreads (fun i w ->
          for iter = 1 to iters do
            (* Assignment phase: compute-heavy, private writes. *)
            w.Api.work (Wl_util.work_amount scale 7_000);
            Wl_util.fill_region w ~addr:(priv_base i) ~bytes:256 ~tag:(i + iter);
            (* Reduction: fold partial sums into shared centroids, one
               lock per centroid group (as real kmeans locks clusters). *)
            for c = 0 to 3 do
              let cent = ((i + c) * 5) mod ncent in
              w.Api.lock (cent mod 8);
              let a = centroids + (8 * cent) in
              w.Api.write_int ~addr:a (w.Api.read_int ~addr:a + iter);
              w.Api.unlock (cent mod 8)
            done;
            w.Api.barrier_wait 0
          done);
      let sum = Wl_util.checksum ops ~addr:centroids ~words:ncent in
      ops.Api.log_output (Printf.sprintf "kmeans=%d" sum))

let default = make ()

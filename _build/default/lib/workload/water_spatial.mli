(** SPLASH-2 [water_spatial]: spatial-decomposition molecular dynamics.
    Far fewer lock operations than water_nsquared (only box-boundary
    molecules need them); dominated by per-step barriers and private
    compute. *)

val make : ?scale:float -> unit -> Api.t
val default : Api.t

lib/workload/ferret.mli: Api

lib/workload/string_match.mli: Api

lib/workload/histogram.mli: Api

lib/workload/swaptions.ml: Api Printf Wl_util

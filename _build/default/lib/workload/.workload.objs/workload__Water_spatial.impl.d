lib/workload/water_spatial.ml: Api Printf Wl_util

lib/workload/ocean_cp.ml: Api Printf Wl_util

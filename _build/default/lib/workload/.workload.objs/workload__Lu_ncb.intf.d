lib/workload/lu_ncb.mli: Api

lib/workload/canneal.mli: Api

lib/workload/matrix_multiply.mli: Api

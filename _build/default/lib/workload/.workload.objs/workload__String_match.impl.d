lib/workload/string_match.ml: Api Printf Wl_util

lib/workload/ferret.ml: Api List Printf Wl_util

lib/workload/dedup.ml: Api List Printf Wl_util

lib/workload/canneal.ml: Api Printf Sim Wl_util

lib/workload/reverse_index.mli: Api

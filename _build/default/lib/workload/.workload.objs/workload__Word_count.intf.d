lib/workload/word_count.mli: Api

lib/workload/ocean_cp.mli: Api

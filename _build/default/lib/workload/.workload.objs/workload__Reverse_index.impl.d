lib/workload/reverse_index.ml: Api Printf Wl_util

lib/workload/water_nsquared.ml: Api Printf Wl_util

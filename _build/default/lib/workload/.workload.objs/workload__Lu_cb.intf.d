lib/workload/lu_cb.mli: Api

lib/workload/linear_regression.ml: Api Printf Wl_util

lib/workload/kmeans.ml: Api Printf Wl_util

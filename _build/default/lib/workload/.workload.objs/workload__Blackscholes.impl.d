lib/workload/blackscholes.ml: Api Printf Wl_util

lib/workload/water_nsquared.mli: Api

lib/workload/word_count.ml: Api Printf Wl_util

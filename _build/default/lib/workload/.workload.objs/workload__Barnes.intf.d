lib/workload/barnes.mli: Api

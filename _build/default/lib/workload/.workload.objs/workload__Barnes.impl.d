lib/workload/barnes.ml: Api Printf Wl_util

lib/workload/blackscholes.mli: Api

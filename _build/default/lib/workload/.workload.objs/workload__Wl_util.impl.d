lib/workload/wl_util.ml: Api Bytes Char Float List

lib/workload/kmeans.mli: Api

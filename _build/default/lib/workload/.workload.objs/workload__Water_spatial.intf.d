lib/workload/water_spatial.mli: Api

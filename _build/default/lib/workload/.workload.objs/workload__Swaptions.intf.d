lib/workload/swaptions.mli: Api

lib/workload/linear_regression.mli: Api

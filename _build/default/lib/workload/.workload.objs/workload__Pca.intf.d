lib/workload/pca.mli: Api

lib/workload/histogram.ml: Api Printf Wl_util

lib/workload/lu_cb.ml: Api Printf Wl_util

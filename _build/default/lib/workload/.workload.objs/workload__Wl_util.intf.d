lib/workload/wl_util.mli: Api

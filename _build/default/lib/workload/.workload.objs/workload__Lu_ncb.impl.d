lib/workload/lu_ncb.ml: Api Printf Wl_util

lib/workload/registry.mli: Api

lib/workload/pca.ml: Api Printf Wl_util

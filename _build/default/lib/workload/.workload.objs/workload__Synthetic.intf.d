lib/workload/synthetic.mli: Api

lib/workload/synthetic.ml: Api List Printf Sim Wl_util

lib/workload/matrix_multiply.ml: Api Printf Wl_util

lib/workload/dedup.mli: Api

(** Phoenix [matrix_multiply]: dense compute over private output tiles.

    No inter-thread synchronization at all between spawn and join; the
    pure embarrassingly-parallel case. *)

val make : ?scale:float -> unit -> Api.t
val default : Api.t

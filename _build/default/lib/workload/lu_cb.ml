let page = 256
let matrix_base = page * 16
let block_pages = 4 (* per-thread contiguous block per step *)

let make ?(scale = 1.0) () =
  Api.make ~name:"lu_cb" ~description:"blocked LU, contiguous (conflict-free) blocks, barrier-heavy"
    ~heap_pages:1024 ~page_size:page (fun ~nthreads ops ->
      ops.Api.barrier_init 0 nthreads;
      let steps = Wl_util.scaled scale 10 in
      Wl_util.spawn_workers ops ~n:nthreads (fun i w ->
          for step = 1 to steps do
            w.Api.work (Wl_util.work_amount scale 4_500);
            (* Update this thread's contiguous block: whole private pages. *)
            let base = matrix_base + (page * block_pages * i) in
            for pg = 0 to block_pages - 1 do
              Wl_util.fill_region w ~addr:(base + (page * pg)) ~bytes:page ~tag:(i + step)
            done;
            w.Api.barrier_wait 0
          done;
          w.Api.write_int ~addr:(8 * i) (i + steps));
      let sum = Wl_util.checksum ops ~addr:0 ~words:nthreads in
      ops.Api.log_output (Printf.sprintf "lu_cb=%d" sum))

let default = make ()

(** Phoenix [string_match]: pure scanning compute, effectively no
    synchronization and almost no writes; the paper's Fig 15 uses it as
    the "embarrassingly parallel" control. *)

val make : ?scale:float -> unit -> Api.t
val default : Api.t

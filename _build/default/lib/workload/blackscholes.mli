(** PARSEC [blackscholes]: data-parallel option pricing, one barrier per
    iteration block; near-zero sharing. *)

val make : ?scale:float -> unit -> Api.t
val default : Api.t

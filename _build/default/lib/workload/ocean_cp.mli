(** SPLASH-2 [ocean_cp] (contiguous partitions): grid relaxation with
    many barrier-separated phases.  Each thread updates its own grid
    band plus the boundary rows it shares with neighbours, so every
    phase moves a large number of pages between threads — the dominant
    parallel-barrier beneficiary in Fig 13. *)

val make : ?scale:float -> unit -> Api.t
val default : Api.t

(** SPLASH-2 [lu_cb] (contiguous blocks): blocked LU factorization where
    each thread owns contiguous blocks.  Barrier-heavy, but writes land
    on thread-private pages so commits are conflict-free. *)

val make : ?scale:float -> unit -> Api.t
val default : Api.t

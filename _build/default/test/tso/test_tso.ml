(* Tests for the litmus DSL, the operational TSO/SC models, and the
   checker that validates the runtimes' consistency claims. *)

module L = Tso.Litmus
module M = Tso.Model
module C = Tso.Checker

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let outcome regs = List.sort compare regs

let mem set o = M.Outcome_set.mem (outcome o) set

(* ------------------------------------------------------------------ *)
(* Litmus DSL                                                         *)
(* ------------------------------------------------------------------ *)

let test_registers_and_vars () =
  Alcotest.(check (list string)) "sb regs" [ "r0"; "r1" ] (L.registers L.sb);
  Alcotest.(check (list string)) "sb vars" [ "x"; "y" ] (L.vars L.sb);
  Alcotest.(check (list string)) "iriw regs" [ "r0"; "r1"; "r2"; "r3" ] (L.registers L.iriw)

let test_all_tests_well_formed () =
  List.iter
    (fun t ->
      check_bool (t.L.name ^ " has threads") true (List.length t.L.threads >= 1);
      check_bool (t.L.name ^ " has registers") true (List.length (L.registers t) >= 1))
    L.all

(* ------------------------------------------------------------------ *)
(* Operational models                                                 *)
(* ------------------------------------------------------------------ *)

let test_sb_models () =
  let sc = M.sc_outcomes L.sb and tso = M.tso_outcomes L.sb in
  (* SC: the classic 3 outcomes; TSO adds (0,0). *)
  check_int "sc count" 3 (M.Outcome_set.cardinal sc);
  check_int "tso count" 4 (M.Outcome_set.cardinal tso);
  check_bool "tso allows 0,0" true (mem tso [ ("r0", 0); ("r1", 0) ]);
  check_bool "sc forbids 0,0" false (mem sc [ ("r0", 0); ("r1", 0) ])

let test_mp_models () =
  (* Message passing: under both SC and TSO, flag=1 implies data=1. *)
  List.iter
    (fun outcomes ->
      check_bool "forbids r1=1,r2=0" false (mem outcomes [ ("r1", 1); ("r2", 0) ]);
      check_bool "allows r1=1,r2=1" true (mem outcomes [ ("r1", 1); ("r2", 1) ]);
      check_bool "allows r1=0,r2=0" true (mem outcomes [ ("r1", 0); ("r2", 0) ]))
    [ M.sc_outcomes L.mp; M.tso_outcomes L.mp; M.sc_outcomes L.mp_unfenced; M.tso_outcomes L.mp_unfenced ]

let test_lb_models () =
  (* Load buffering: TSO does not reorder loads with later stores. *)
  let tso = M.tso_outcomes L.lb in
  check_bool "forbids 1,1" false (mem tso [ ("r0", 1); ("r1", 1) ]);
  check_bool "allows 0,0" true (mem tso [ ("r0", 0); ("r1", 0) ])

let test_corr_models () =
  (* Read-read coherence: r0=1 then r1=0 is forbidden. *)
  let tso = M.tso_outcomes L.corr in
  check_bool "no backwards reads" false (mem tso [ ("r0", 1); ("r1", 0) ]);
  check_bool "allows 0 then 1" true (mem tso [ ("r0", 0); ("r1", 1) ])

let test_iriw_models () =
  (* IRIW: readers must agree on the store order under TSO (no outcome
     where both see the two stores in opposite orders). *)
  let tso = M.tso_outcomes L.iriw in
  check_bool "forbids disagreement" false
    (mem tso [ ("r0", 1); ("r1", 0); ("r2", 1); ("r3", 0) ])

let test_n7_models () =
  let sc = M.sc_outcomes L.n7 and tso = M.tso_outcomes L.n7 in
  (* Own stores are visible early: r0=1 and r2=1 always. *)
  M.Outcome_set.iter
    (fun o ->
      check_int "reads own store x" 1 (List.assoc "r0" o);
      check_int "reads own store y" 1 (List.assoc "r2" o))
    tso;
  check_bool "tso-only outcome exists" true (M.Outcome_set.cardinal tso > M.Outcome_set.cardinal sc)

let prop_sc_subset_of_tso =
  QCheck.Test.make ~name:"SC outcomes are always a subset of TSO outcomes" ~count:7
    QCheck.(int_bound (List.length L.all - 1))
    (fun i ->
      let t = List.nth L.all i in
      M.Outcome_set.subset (M.sc_outcomes t) (M.tso_outcomes t))

let test_delay_does_not_change_outcomes () =
  let padded =
    {
      L.name = "SB+delays";
      description = "";
      threads =
        [
          [ L.Delay 100; L.Store ("x", 1); L.Delay 50; L.Load ("y", "r0") ];
          [ L.Store ("y", 1); L.Load ("x", "r1") ];
        ];
    }
  in
  check_bool "same sets" true
    (M.Outcome_set.equal (M.tso_outcomes padded) (M.tso_outcomes L.sb))

(* ------------------------------------------------------------------ *)
(* Checker against the real runtimes                                  *)
(* ------------------------------------------------------------------ *)

let test_all_runtimes_tso_consistent () =
  List.iter
    (fun test ->
      List.iter
        (fun rt ->
          let v = C.run_test rt test in
          check_bool
            (Printf.sprintf "%s on %s tso-ok" test.L.name v.C.runtime)
            true v.C.tso_ok)
        Runtime.Run.all)
    L.all

let test_store_buffering_observed () =
  (* The deterministic runtimes must exhibit the TSO-only SB outcome. *)
  List.iter
    (fun rt ->
      let v = C.run_test rt L.sb in
      check_bool (Runtime.Run.name rt ^ " buffers stores") true v.C.beyond_sc)
    [ Runtime.Run.dthreads; Runtime.Run.dwc; Runtime.Run.consequence_rr; Runtime.Run.consequence_ic ]

let test_pthreads_is_sc () =
  List.iter
    (fun test ->
      let v = C.run_test Runtime.Run.pthreads test in
      check_bool (test.L.name ^ " pthreads within SC") true v.C.sc_ok)
    L.all

let test_observe_deterministic () =
  (* A single observation on a deterministic runtime is seed-invariant. *)
  let o1 = C.observe Runtime.Run.consequence_ic ~seed:1 L.iriw in
  let o2 = C.observe Runtime.Run.consequence_ic ~seed:999 L.iriw in
  check_bool "same outcome" true (o1 = o2)

let test_paddings_change_outcomes_somewhere () =
  (* Different start delays must be able to produce different outcomes
     (otherwise the checker explores nothing).  On the deterministic
     runtimes most two-thread tests are padding-insensitive (threads only
     observe each other's commits at their own sync points), so IRIW —
     where the checker's delay grid shifts the writers' exit commits
     relative to the readers — and pthreads' genuinely timing-dependent
     SB are the probes. *)
  let sb_outcomes =
    List.map
      (fun paddings -> C.observe Runtime.Run.pthreads ~paddings L.sb)
      (C.default_paddings ~nthreads:2)
  in
  check_bool "pthreads sb outcomes vary" true
    (List.length (List.sort_uniq compare sb_outcomes) > 1)

(* Random litmus tests: generate small store/load programs and verify the
   deterministic runtime's outcomes stay within the operational TSO set. *)
let random_litmus ~seed =
  let p = Sim.Prng.create ~seed in
  let var () = if Sim.Prng.bool p then "x" else "y" in
  let thread tid =
    List.init
      (2 + Sim.Prng.int p ~bound:2)
      (fun k ->
        if Sim.Prng.bool p then L.Store (var (), 1 + Sim.Prng.int p ~bound:2)
        else L.Load (var (), Printf.sprintf "r%d_%d" tid k))
  in
  {
    L.name = Printf.sprintf "rand-%d" seed;
    description = "generated";
    threads = [ thread 0; thread 1 ];
  }

let prop_random_litmus_within_tso =
  QCheck.Test.make ~name:"random litmus programs stay within the TSO model" ~count:25
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let test = random_litmus ~seed in
      let v = C.run_test Runtime.Run.consequence_ic ~seeds:[ 1 ] test in
      v.C.tso_ok)

let () =
  Alcotest.run "tso"
    [
      ( "litmus",
        [
          Alcotest.test_case "registers and vars" `Quick test_registers_and_vars;
          Alcotest.test_case "well-formed" `Quick test_all_tests_well_formed;
        ] );
      ( "models",
        [
          Alcotest.test_case "SB" `Quick test_sb_models;
          Alcotest.test_case "MP" `Quick test_mp_models;
          Alcotest.test_case "LB" `Quick test_lb_models;
          Alcotest.test_case "CoRR" `Quick test_corr_models;
          Alcotest.test_case "IRIW" `Quick test_iriw_models;
          Alcotest.test_case "n7" `Quick test_n7_models;
          Alcotest.test_case "delays don't change outcomes" `Quick
            test_delay_does_not_change_outcomes;
          QCheck_alcotest.to_alcotest prop_sc_subset_of_tso;
        ] );
      ( "checker",
        [
          Alcotest.test_case "all runtimes TSO-consistent" `Slow test_all_runtimes_tso_consistent;
          Alcotest.test_case "store buffering observed" `Quick test_store_buffering_observed;
          Alcotest.test_case "pthreads is SC" `Quick test_pthreads_is_sc;
          Alcotest.test_case "observation deterministic" `Quick test_observe_deterministic;
          Alcotest.test_case "paddings explore outcomes" `Quick
            test_paddings_change_outcomes_somewhere;
          QCheck_alcotest.to_alcotest prop_random_litmus_within_tso;
        ] );
    ]

(* A ferret-style pipeline under deterministic execution (paper 5.2).

     dune exec examples/pipeline.exe

   Three stages connected by bounded queues (mutex + two condvars each).
   The first stage produces items at a high rate with short chunks — the
   ferret_1 pattern; later stages do heavier per-item work.  This is the
   workload class where the two Consequence headline mechanisms earn
   their keep:

   - GMIC ordering keeps the fast-syncing stage-1 thread eligible for
     the token (its instruction count stays the global minimum), instead
     of throttling it to one sync op per round-robin turn;
   - adaptive coarsening amortizes its many tiny coordination phases.

   The run prints per-runtime wall time plus the token/coordination
   statistics that explain the differences. *)

let items = 24

let program =
  Api.make ~name:"example-pipeline" ~heap_pages:128 ~page_size:256
    (fun ~nthreads ops ->
      let q1 = Workload.Wl_util.queue_make ~base:(256 * 32) ~capacity:6 ~lock:0 ~nonfull:0 ~nonempty:1 in
      let q2 = Workload.Wl_util.queue_make ~base:(256 * 40) ~capacity:6 ~lock:1 ~nonfull:2 ~nonempty:3 in
      let poison = 0 in
      let n_mid = max 1 ((nthreads - 1) / 2) in
      let n_sink = max 1 (nthreads - 1 - n_mid) in
      let source =
        ops.Api.spawn ~name:"source" (fun w ->
            for j = 1 to items do
              w.Api.work 4_000;
              Workload.Wl_util.queue_push w q1 j
            done;
            for _ = 1 to n_mid do
              Workload.Wl_util.queue_push w q1 poison
            done)
      in
      let mids =
        List.init n_mid (fun k ->
            ops.Api.spawn ~name:(Printf.sprintf "transform-%d" k) (fun w ->
                let continue = ref true in
                while !continue do
                  let v = Workload.Wl_util.queue_pop w q1 in
                  if v = poison then continue := false
                  else begin
                    w.Api.work 60_000;
                    Workload.Wl_util.queue_push w q2 (v * v)
                  end
                done))
      in
      let sinks =
        List.init n_sink (fun k ->
            ops.Api.spawn ~name:(Printf.sprintf "sink-%d" k) (fun w ->
                let continue = ref true in
                while !continue do
                  let v = Workload.Wl_util.queue_pop w q2 in
                  if v = poison then continue := false
                  else begin
                    w.Api.work 70_000;
                    (* Accumulate per-item results in disjoint slots so the
                       final answer is schedule-independent. *)
                    w.Api.lock 2;
                    let a = 256 * 50 in
                    w.Api.write_int ~addr:a (w.Api.read_int ~addr:a + v);
                    w.Api.unlock 2
                  end
                done))
      in
      ops.Api.join source;
      List.iter ops.Api.join mids;
      for _ = 1 to n_sink do
        Workload.Wl_util.queue_push ops q2 poison
      done;
      List.iter ops.Api.join sinks;
      ops.Api.log_output (Printf.sprintf "sum-of-squares=%d" (ops.Api.read_int ~addr:(256 * 50))))

let () =
  let expected = List.fold_left ( + ) 0 (List.init items (fun i -> (i + 1) * (i + 1))) in
  Printf.printf "expected sum of squares: %d\n\n" expected;
  Printf.printf "%-16s %-12s %-12s %-14s %s\n" "runtime" "wall" "sync-ops" "token-acqs" "coarsened";
  List.iter
    (fun rt ->
      let r = Runtime.Run.run rt ~seed:1 ~nthreads:8 program in
      Printf.printf "%-16s %8.3f ms %-12d %-14d %d\n" (Runtime.Run.name rt)
        (float_of_int r.Stats.Run_result.wall_ns /. 1e6)
        r.Stats.Run_result.sync_ops r.Stats.Run_result.token_acquisitions
        r.Stats.Run_result.coarsened_chunks)
    Runtime.Run.all;
  print_newline ();
  print_endline
    "Note how Consequence performs far fewer token acquisitions than it has";
  print_endline
    "sync operations: adaptive coarsening coalesced the source's high-rate";
  print_endline "queue operations into a handful of coordination phases."

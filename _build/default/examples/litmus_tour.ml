(* A guided tour of the TSO consistency claim (paper section 2.3).

     dune exec examples/litmus_tour.exe

   For each classic litmus test we print the outcome sets permitted by
   the operational SC and TSO reference machines, then the outcomes
   actually observed when the test executes on the deterministic runtime
   under many schedule perturbations.  The interesting rows are SB and
   n7, where Consequence exhibits the TSO-only (store-buffered) outcome —
   demonstrating that its determinism really is built on store buffering,
   not on accidental sequential consistency. *)

let () =
  List.iter
    (fun test ->
      Printf.printf "== %s ==\n%s\n" test.Tso.Litmus.name test.Tso.Litmus.description;
      let sc = Tso.Model.sc_outcomes test in
      let tso = Tso.Model.tso_outcomes test in
      let tso_only = Tso.Model.Outcome_set.diff tso sc in
      Format.printf "  SC allows %d outcome(s); TSO allows %d.@."
        (Tso.Model.Outcome_set.cardinal sc)
        (Tso.Model.Outcome_set.cardinal tso);
      if not (Tso.Model.Outcome_set.is_empty tso_only) then
        Format.printf "  TSO-only outcomes: %a@."
          (Format.pp_print_list Tso.Model.pp_outcome)
          (Tso.Model.Outcome_set.elements tso_only);
      List.iter
        (fun rt ->
          let v = Tso.Checker.run_test rt test in
          Format.printf "  %-16s observed %a -> %s@." (Runtime.Run.name rt)
            (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
               Tso.Model.pp_outcome)
            (Tso.Model.Outcome_set.elements v.Tso.Checker.observed)
            (if not v.Tso.Checker.tso_ok then "TSO VIOLATION!"
             else if v.Tso.Checker.beyond_sc then "store buffering observed"
             else "within SC");
          assert v.Tso.Checker.tso_ok)
        [ Runtime.Run.pthreads; Runtime.Run.consequence_ic ];
      print_newline ())
    [ Tso.Litmus.sb; Tso.Litmus.mp; Tso.Litmus.mp_unfenced; Tso.Litmus.n7; Tso.Litmus.iriw ]

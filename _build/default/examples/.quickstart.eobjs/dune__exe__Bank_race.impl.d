examples/bank_race.ml: Api List Printf Runtime Stats

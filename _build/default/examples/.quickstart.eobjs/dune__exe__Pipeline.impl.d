examples/pipeline.ml: Api List Printf Runtime Stats Workload

examples/bank_race.mli:

examples/pipeline.mli:

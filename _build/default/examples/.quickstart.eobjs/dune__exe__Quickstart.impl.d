examples/quickstart.ml: Api List Printf Runtime Stats String

examples/quickstart.mli:

examples/litmus_tour.ml: Format List Printf Runtime Tso

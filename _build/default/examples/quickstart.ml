(* Quickstart: write a pthreads-style program once, run it under every
   threading library in the repository.

     dune exec examples/quickstart.exe

   The program below is a textbook parallel reduction: each worker
   computes a partial sum over its slice and folds it into a shared
   accumulator under a mutex.  Because it is correctly synchronized, all
   five libraries must produce the same answer; the deterministic ones
   must in addition produce byte-identical execution witnesses no matter
   how the (simulated) hardware timing is perturbed. *)

let accumulator = 0 (* heap address of the shared sum *)

let program =
  Api.make ~name:"quickstart-reduction"
    ~description:"parallel reduction with a mutex-protected accumulator" ~heap_pages:64
    ~page_size:256 (fun ~nthreads ops ->
      let workers =
        List.init nthreads (fun i ->
            ops.Api.spawn ~name:(Printf.sprintf "worker-%d" i) (fun w ->
                (* Compute a partial sum over slice i: simulated work plus
                   a real value so the answer is checkable. *)
                let partial = ref 0 in
                for k = 1 to 100 do
                  w.Api.work 500;
                  partial := !partial + (i * 100) + k
                done;
                (* Fold into the shared accumulator under the lock. *)
                w.Api.lock 0;
                let v = w.Api.read_int ~addr:accumulator in
                w.Api.write_int ~addr:accumulator (v + !partial);
                w.Api.unlock 0))
      in
      List.iter ops.Api.join workers;
      ops.Api.log_output (Printf.sprintf "sum=%d" (ops.Api.read_int ~addr:accumulator)))

let expected nthreads =
  (* Sum over i in [0,n), k in [1,100] of i*100 + k. *)
  let n = nthreads in
  (100 * 100 * (n * (n - 1) / 2)) + (n * 5050)

let () =
  let nthreads = 8 in
  Printf.printf "expected sum: %d\n\n" (expected nthreads);
  Printf.printf "%-16s %-12s %-10s %s\n" "runtime" "wall" "sync-ops" "witness (stable across seeds?)";
  List.iter
    (fun rt ->
      let r1 = Runtime.Run.run rt ~seed:1 ~nthreads program in
      let r2 = Runtime.Run.run rt ~seed:20260705 ~nthreads program in
      let stable =
        Stats.Run_result.deterministic_witness r1 = Stats.Run_result.deterministic_witness r2
      in
      Printf.printf "%-16s %8.3f ms %-10d %s%s\n" (Runtime.Run.name rt)
        (float_of_int r1.Stats.Run_result.wall_ns /. 1e6)
        r1.Stats.Run_result.sync_ops
        (String.sub r1.Stats.Run_result.mem_hash 0 16)
        (if stable then "  [stable]" else "  [varies with timing]"))
    Runtime.Run.all;
  print_newline ();
  print_endline
    "All runtimes compute the same sum (same memory hash).  The deterministic";
  print_endline
    "libraries also produce identical witnesses for every seed; pthreads' sync";
  print_endline "order varies with timing even though this program's output does not."

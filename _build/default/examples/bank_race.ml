(* The determinism pitch, on a buggy program (paper sections 1-2).

     dune exec examples/bank_race.exe

   A "bank" moves money between accounts with UNSYNCHRONIZED read-modify-
   write transfers — the classic lost-update bug.  Under pthreads the
   amount of money lost depends on scheduling: every run (seed) can give a
   different total, which is precisely what makes such bugs miserable to
   reproduce and debug.  Under a deterministic runtime the program is
   still buggy, but it is buggy THE SAME WAY every single time: the bug
   reproduces on the first try, every try.

   The third section shows the paper's proposed fix for atomic operations
   (section 2.7): routing the RMW through the global token restores both
   atomicity and determinism. *)

let accounts = 8
let account_addr i = 8 * i
let initial_balance = 1_000

let make_program ~atomic =
  Api.make
    ~name:(if atomic then "bank-atomic" else "bank-racy")
    ~heap_pages:16 ~page_size:256
    (fun ~nthreads ops ->
      (* Fund the accounts. *)
      for i = 0 to accounts - 1 do
        ops.Api.write_int ~addr:(account_addr i) initial_balance
      done;
      ops.Api.barrier_init 0 nthreads;
      let workers =
        List.init nthreads (fun i ->
            ops.Api.spawn (fun w ->
                w.Api.barrier_wait 0;
                (* Shuffle money around with racy (or atomic) transfers. *)
                for round = 1 to 25 do
                  let src = (i + round) mod accounts in
                  let dst = (i + (3 * round)) mod accounts in
                  if src <> dst then
                    if atomic then begin
                      ignore (w.Api.atomic_fetch_add ~addr:(account_addr src) (-10));
                      ignore (w.Api.atomic_fetch_add ~addr:(account_addr dst) 10)
                    end
                    else begin
                      (* read ... compute ... write: the racy window *)
                      let s = w.Api.read_int ~addr:(account_addr src) in
                      w.Api.work (100 + i);
                      w.Api.write_int ~addr:(account_addr src) (s - 10);
                      let d = w.Api.read_int ~addr:(account_addr dst) in
                      w.Api.work 80;
                      w.Api.write_int ~addr:(account_addr dst) (d + 10)
                    end
                done))
      in
      List.iter ops.Api.join workers;
      let total = ref 0 in
      for i = 0 to accounts - 1 do
        total := !total + ops.Api.read_int ~addr:(account_addr i)
      done;
      ops.Api.log_output (Printf.sprintf "total=%d" !total))

(* Recover the logged total by re-running with a host-side spy. *)
let total_of rt ~seed program =
  let r = Runtime.Run.run rt ~seed ~nthreads:8 program in
  (r.Stats.Run_result.mem_hash, r.Stats.Run_result.output_hash)

let () =
  let expected = accounts * initial_balance in
  let racy = make_program ~atomic:false in
  let atomic = make_program ~atomic:true in
  Printf.printf "total money in the system should always be %d\n\n" expected;

  Printf.printf "racy transfers, 6 runs per runtime (distinct outcomes seen):\n";
  List.iter
    (fun rt ->
      let outcomes =
        List.map (fun seed -> total_of rt ~seed racy) [ 1; 2; 3; 5; 8; 13 ]
        |> List.sort_uniq compare
      in
      Printf.printf "  %-16s %d distinct outcome(s)%s\n" (Runtime.Run.name rt)
        (List.length outcomes)
        (if List.length outcomes = 1 then
           if Runtime.Run.deterministic rt then "  <- buggy, but reproducibly buggy"
           else ""
         else "  <- a heisenbug: different money lost each run"))
    Runtime.Run.all;

  Printf.printf "\natomic transfers (section 2.7 fix), 6 runs per runtime:\n";
  let reference = total_of Runtime.Run.pthreads ~seed:1 atomic in
  List.iter
    (fun rt ->
      let outcomes =
        List.map (fun seed -> total_of rt ~seed atomic) [ 1; 2; 3; 5; 8; 13 ]
        |> List.sort_uniq compare
      in
      let agree = List.for_all (fun (_, out) -> out = snd reference) outcomes in
      Printf.printf "  %-16s %d distinct outcome(s), money conserved everywhere: %b\n"
        (Runtime.Run.name rt) (List.length outcomes) agree)
    Runtime.Run.all
